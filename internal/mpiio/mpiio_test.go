package mpiio_test

import (
	"bytes"
	"testing"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/dfuse"
	"daosim/internal/fabric"
	"daosim/internal/mpi"
	"daosim/internal/mpiio"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// env is a shared-file test environment: a world, per-node DFS mounts, and
// per-node dfuse mounts.
type env struct {
	tb     *cluster.Testbed
	world  *mpi.World
	fs     []*dfs.FS      // per rank (each rank's own client/mount)
	mounts []*dfuse.Mount // per node
	nodes  []*fabric.Node
}

// withEnv boots a small testbed with `ranks` ranks over 2 client nodes.
func withEnv(t *testing.T, ranks int, body func(p *sim.Proc, e *env)) {
	t.Helper()
	tb := cluster.New(cluster.Small())
	e := &env{tb: tb}
	for i := 0; i < ranks; i++ {
		e.nodes = append(e.nodes, tb.ClientNode(i))
	}
	e.world = mpi.NewWorld(tb.Sim, tb.Fabric, e.nodes)
	tb.Run(func(p *sim.Proc) {
		admin := tb.NewClient(tb.ClientNode(0), 1000)
		pool, err := admin.CreatePool(p, "p0")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.SX}); err != nil {
			t.Error(err)
			return
		}
		// Per-rank clients + mounts (ranks on the same node share a dfuse
		// mount in real deployments; here one mount per rank node entry is
		// built once per node).
		mountByNode := map[*fabric.Node]*dfuse.Mount{}
		for i := 0; i < ranks; i++ {
			cl := tb.NewClient(e.nodes[i], uint32(i))
			pl, err := cl.Connect(p, "p0")
			if err != nil {
				t.Error(err)
				return
			}
			ct, err := pl.OpenContainer(p, "c0")
			if err != nil {
				t.Error(err)
				return
			}
			fsys, err := dfs.Mount(p, ct)
			if err != nil {
				t.Error(err)
				return
			}
			e.fs = append(e.fs, fsys)
			if _, ok := mountByNode[e.nodes[i]]; !ok {
				mountByNode[e.nodes[i]] = dfuse.NewMount(tb.Sim, e.nodes[i], fsys, dfuse.DefaultCosts())
			}
			e.mounts = append(e.mounts, mountByNode[e.nodes[i]])
		}
		body(p, e)
	})
}

func pattern(rank, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rank*37 + i*11)
	}
	return out
}

func TestIndependentSharedFileDFS(t *testing.T) {
	const ranks, blk = 4, 1 << 20
	withEnv(t, ranks, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, err := mpiio.OpenDFS(cp, r, e.fs[r.ID()], "/shared.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(2))
			if err != nil {
				t.Error(err)
				return
			}
			off := int64(r.ID()) * blk
			if err := f.WriteAt(cp, off, pattern(r.ID(), blk)); err != nil {
				t.Error(err)
				return
			}
			r.Barrier(cp)
			// Read the neighbour's block (defeats any locality).
			peer := (r.ID() + 1) % ranks
			got, err := f.ReadAt(cp, int64(peer)*blk, blk)
			if err != nil || !bytes.Equal(got, pattern(peer, blk)) {
				t.Errorf("rank %d: neighbour read mismatch (%v)", r.ID(), err)
			}
			f.Close(cp)
		})
	})
}

func TestIndependentSharedFilePOSIX(t *testing.T) {
	const ranks, blk = 4, 1 << 19
	withEnv(t, ranks, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, err := mpiio.OpenPOSIX(cp, r, e.mounts[r.ID()], "/shared-posix.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(2))
			if err != nil {
				t.Error(err)
				return
			}
			off := int64(r.ID()) * blk
			if err := f.WriteAt(cp, off, pattern(r.ID(), blk)); err != nil {
				t.Error(err)
				return
			}
			r.Barrier(cp)
			peer := (r.ID() + 3) % ranks
			got, err := f.ReadAt(cp, int64(peer)*blk, blk)
			if err != nil || !bytes.Equal(got, pattern(peer, blk)) {
				t.Errorf("rank %d: read mismatch (%v)", r.ID(), err)
			}
			f.Close(cp)
		})
	})
}

func TestCollectiveWriteReadRoundTrip(t *testing.T) {
	const ranks, blk = 4, 1 << 19
	withEnv(t, ranks, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, err := mpiio.OpenDFS(cp, r, e.fs[r.ID()], "/coll.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(2))
			if err != nil {
				t.Error(err)
				return
			}
			off := int64(r.ID()) * blk
			if err := f.WriteAtAll(cp, off, pattern(r.ID(), blk)); err != nil {
				t.Error(err)
				return
			}
			got, err := f.ReadAtAll(cp, off, blk)
			if err != nil || !bytes.Equal(got, pattern(r.ID(), blk)) {
				t.Errorf("rank %d: collective round trip mismatch (%v)", r.ID(), err)
			}
			// Cross-check: collective read of the neighbour's block.
			peer := (r.ID() + 1) % ranks
			got, err = f.ReadAtAll(cp, int64(peer)*blk, blk)
			if err != nil || !bytes.Equal(got, pattern(peer, blk)) {
				t.Errorf("rank %d: collective neighbour read mismatch (%v)", r.ID(), err)
			}
			f.Close(cp)
		})
	})
}

func TestCollectiveInterleavedPattern(t *testing.T) {
	// Strided/interleaved access is where two-phase shines: each rank owns
	// every ranks-th 64 KiB cell. Verify the reassembled file.
	const ranks = 4
	const cell = 64 << 10
	const cellsPerRank = 8
	withEnv(t, ranks, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, err := mpiio.OpenDFS(cp, r, e.fs[r.ID()], "/strided.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(2))
			if err != nil {
				t.Error(err)
				return
			}
			// Write cells one collective call at a time (all ranks together).
			for c := 0; c < cellsPerRank; c++ {
				off := int64(c*ranks+r.ID()) * cell
				if err := f.WriteAtAll(cp, off, pattern(r.ID()+c*100, cell)); err != nil {
					t.Error(err)
					return
				}
			}
			r.Barrier(cp)
			// Independent verification of every cell.
			for c := 0; c < cellsPerRank; c++ {
				for owner := 0; owner < ranks; owner++ {
					off := int64(c*ranks+owner) * cell
					got, err := f.ReadAt(cp, off, cell)
					if err != nil || !bytes.Equal(got, pattern(owner+c*100, cell)) {
						t.Errorf("cell (%d,%d) mismatch (%v)", c, owner, err)
						return
					}
				}
			}
			f.Close(cp)
		})
	})
}

func TestSetView(t *testing.T) {
	withEnv(t, 2, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, err := mpiio.OpenDFS(cp, r, e.fs[r.ID()], "/view.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(1))
			if err != nil {
				t.Error(err)
				return
			}
			f.SetView(4096)
			if r.ID() == 0 {
				f.WriteAt(cp, 0, []byte("header-relative"))
			}
			r.Barrier(cp)
			got, err := f.ReadAt(cp, 0, 15)
			if err != nil || string(got) != "header-relative" {
				t.Errorf("view read = %q, %v", got, err)
			}
			// The absolute file offset is displaced.
			f.SetView(0)
			got, _ = f.ReadAt(cp, 4096, 15)
			if string(got) != "header-relative" {
				t.Errorf("absolute read = %q", got)
			}
		})
	})
}

func TestCollectiveZeroLengthParticipant(t *testing.T) {
	withEnv(t, 3, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, err := mpiio.OpenDFS(cp, r, e.fs[r.ID()], "/uneven.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(1))
			if err != nil {
				t.Error(err)
				return
			}
			// Rank 2 contributes nothing but must still participate.
			var data []byte
			if r.ID() < 2 {
				data = pattern(r.ID(), 8192)
			}
			if err := f.WriteAtAll(cp, int64(r.ID())*8192, data); err != nil {
				t.Error(err)
				return
			}
			got, err := f.ReadAtAll(cp, 0, 8192)
			if err != nil || !bytes.Equal(got, pattern(0, 8192)) {
				t.Errorf("rank %d read mismatch (%v)", r.ID(), err)
			}
		})
	})
}

func TestFileSizeAfterSharedWrites(t *testing.T) {
	const ranks, blk = 4, 1 << 18
	withEnv(t, ranks, func(p *sim.Proc, e *env) {
		e.world.Parallel(p, func(cp *sim.Proc, r *mpi.Rank) {
			f, _ := mpiio.OpenDFS(cp, r, e.fs[r.ID()], "/sized.dat", true, dfs.CreateOpts{}, mpiio.DefaultHints(2))
			f.WriteAt(cp, int64(r.ID())*blk, pattern(r.ID(), blk))
			r.Barrier(cp)
			size, err := f.Size(cp)
			if err != nil || size != ranks*blk {
				t.Errorf("size = %d, %v (want %d)", size, err, ranks*blk)
			}
		})
	})
}
