// Package dfs implements the DAOS File System (libdfs): a POSIX-style
// namespace encoded in DAOS objects. Directories are KV-style objects
// mapping entry names to records; files are byte-array objects striped over
// their class's shards in container-chunk-size cells. A superblock record
// under the root object carries the filesystem defaults, as in DFS.
//
// This is the paper's "DFS" interface (IOR's DFS backend): applications do
// file I/O, but every operation maps directly onto object RPCs with no
// kernel involvement. DFuse (package dfuse) adds the kernel FUSE mount on
// top of this package.
package dfs

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path"
	"strings"

	"daosim/internal/daos"
	"daosim/internal/engine"
	"daosim/internal/placement"
	"daosim/internal/sim"
	"daosim/internal/vos"
)

// Errors returned by filesystem operations.
var (
	ErrNotExist = errors.New("dfs: no such file or directory")
	ErrExist    = errors.New("dfs: file exists")
	ErrNotDir   = errors.New("dfs: not a directory")
	ErrIsDir    = errors.New("dfs: is a directory")
	ErrNotEmpty = errors.New("dfs: directory not empty")
	ErrBadMount = errors.New("dfs: not a DFS container")
)

// EntryType distinguishes namespace records.
type EntryType uint8

// Entry types.
const (
	TypeFile EntryType = iota + 1
	TypeDir
)

// entry is one directory record.
type entry struct {
	Type  EntryType
	OID   vos.ObjectID
	Chunk int64
	Class placement.ClassID
	Mtime int64 // virtual ns at last metadata change
}

// superblock is the filesystem header stored under the root object.
type superblock struct {
	Magic   uint64
	Version int
	Chunk   int64
	Class   placement.ClassID
}

const sbMagic = 0xDF5DF5DF5DF5DF5

// Reserved names inside the root object.
var (
	sbDkey    = []byte(".dfs_superblock")
	entryAkey = []byte("entry")
)

// rootOID is the well-known root directory object (metadata class S1).
var rootOID = placement.EncodeOID(placement.S1, 0, 1)

// FS is a mounted filesystem.
type FS struct {
	cont *daos.Container
	sb   superblock
	root *daos.Object
	// Lookups counts directory entry fetch RPz (observability for the
	// metadata-path benchmarks).
	Lookups int64
}

// Mount opens (formatting on first use) the DFS namespace in a container.
// The container's Class and ChunkSize props become the defaults for new
// files, as dfs_cont_create records them.
func Mount(p *sim.Proc, ct *daos.Container) (*FS, error) {
	root, err := ct.OpenObject(p, rootOID)
	if err != nil {
		return nil, fmt.Errorf("dfs: mount: %w", err)
	}
	fs := &FS{cont: ct, root: root}
	raw, err := root.Fetch(p, []engine.ReadExt{{Dkey: sbDkey, Akey: entryAkey, Single: true}}, 0)
	if err != nil {
		return nil, fmt.Errorf("dfs: mount: %w", err)
	}
	if raw[0] == nil {
		// Fresh container: format.
		fs.sb = superblock{
			Magic:   sbMagic,
			Version: 1,
			Chunk:   ct.Props.ChunkSize,
			Class:   ct.Props.Class,
		}
		if err := root.Update(p, []engine.WriteExt{{
			Dkey: sbDkey, Akey: entryAkey, Data: encode(fs.sb), Single: true,
		}}); err != nil {
			return nil, fmt.Errorf("dfs: format: %w", err)
		}
		return fs, nil
	}
	if err := decode(raw[0], &fs.sb); err != nil || fs.sb.Magic != sbMagic {
		return nil, ErrBadMount
	}
	return fs, nil
}

// Chunk returns the filesystem's default chunk size.
func (fs *FS) Chunk() int64 { return fs.sb.Chunk }

// Class returns the filesystem's default object class for files.
func (fs *FS) Class() placement.ClassID { return fs.sb.Class }

func encode(v interface{}) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic("dfs: encode: " + err.Error())
	}
	return buf.Bytes()
}

func decode(raw []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// splitPath normalizes and splits an absolute path into components.
func splitPath(p string) ([]string, error) {
	cleaned := path.Clean("/" + p)
	if cleaned == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(cleaned, "/"), "/"), nil
}

// lookupDir walks to the directory object holding the path's parent,
// returning the parent handle and the leaf name.
func (fs *FS) lookupDir(p *sim.Proc, fullPath string) (*daos.Object, string, error) {
	comps, err := splitPath(fullPath)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return fs.root, "", nil
	}
	dir := fs.root
	for _, comp := range comps[:len(comps)-1] {
		ent, err := fs.fetchEntry(p, dir, comp)
		if err != nil {
			return nil, "", err
		}
		if ent.Type != TypeDir {
			return nil, "", fmt.Errorf("%w: %s", ErrNotDir, comp)
		}
		dir, err = fs.cont.OpenObject(p, ent.OID)
		if err != nil {
			return nil, "", err
		}
	}
	return dir, comps[len(comps)-1], nil
}

// fetchEntry reads one directory record.
func (fs *FS) fetchEntry(p *sim.Proc, dir *daos.Object, name string) (entry, error) {
	fs.Lookups++
	raw, err := dir.Fetch(p, []engine.ReadExt{{Dkey: []byte(name), Akey: entryAkey, Single: true}}, 0)
	if err != nil {
		return entry{}, err
	}
	if raw[0] == nil {
		return entry{}, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	var ent entry
	if err := decode(raw[0], &ent); err != nil {
		return entry{}, fmt.Errorf("dfs: corrupt entry %q: %v", name, err)
	}
	return ent, nil
}

// storeEntry writes one directory record.
func (fs *FS) storeEntry(p *sim.Proc, dir *daos.Object, name string, ent entry) error {
	return dir.Update(p, []engine.WriteExt{{
		Dkey: []byte(name), Akey: entryAkey, Data: encode(ent), Single: true,
	}})
}

// Mkdir creates a directory. The parent must exist.
func (fs *FS) Mkdir(p *sim.Proc, dirPath string) error {
	parent, name, err := fs.lookupDir(p, dirPath)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("%w: /", ErrExist)
	}
	if _, err := fs.fetchEntry(p, parent, name); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, dirPath)
	}
	ent := entry{
		Type:  TypeDir,
		OID:   fs.cont.AllocOID(placement.S1), // directory metadata stays on one target
		Mtime: p.Now().Nanoseconds(),
	}
	return fs.storeEntry(p, parent, name, ent)
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p *sim.Proc, dirPath string) error {
	comps, err := splitPath(dirPath)
	if err != nil {
		return err
	}
	cur := "/"
	for _, comp := range comps {
		cur = path.Join(cur, comp)
		if err := fs.Mkdir(p, cur); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// CreateOpts override the filesystem defaults for one file.
type CreateOpts struct {
	Class placement.ClassID // SAny: use the FS default
	Chunk int64             // 0: use the FS default
}

// Create makes a new file, failing if it exists.
func (fs *FS) Create(p *sim.Proc, filePath string, opts CreateOpts) (*File, error) {
	parent, name, err := fs.lookupDir(p, filePath)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, ErrIsDir
	}
	if _, err := fs.fetchEntry(p, parent, name); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrExist, filePath)
	}
	class := opts.Class
	if class == placement.SAny {
		class = fs.sb.Class
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = fs.sb.Chunk
	}
	ent := entry{
		Type:  TypeFile,
		OID:   fs.cont.AllocOID(class),
		Chunk: chunk,
		Class: class,
		Mtime: p.Now().Nanoseconds(),
	}
	if err := fs.storeEntry(p, parent, name, ent); err != nil {
		return nil, err
	}
	return fs.openEntry(p, filePath, ent)
}

// Open opens an existing file.
func (fs *FS) Open(p *sim.Proc, filePath string) (*File, error) {
	parent, name, err := fs.lookupDir(p, filePath)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, ErrIsDir
	}
	ent, err := fs.fetchEntry(p, parent, name)
	if err != nil {
		return nil, err
	}
	if ent.Type != TypeFile {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, filePath)
	}
	return fs.openEntry(p, filePath, ent)
}

// OpenOrCreate opens the file, creating it when absent (O_CREAT without
// O_EXCL).
func (fs *FS) OpenOrCreate(p *sim.Proc, filePath string, opts CreateOpts) (*File, error) {
	f, err := fs.Open(p, filePath)
	if errors.Is(err, ErrNotExist) {
		f, err = fs.Create(p, filePath, opts)
		if errors.Is(err, ErrExist) {
			return fs.Open(p, filePath)
		}
	}
	return f, err
}

func (fs *FS) openEntry(p *sim.Proc, filePath string, ent entry) (*File, error) {
	obj, err := fs.cont.OpenObject(p, ent.OID)
	if err != nil {
		return nil, err
	}
	return &File{
		fs:   fs,
		path: filePath,
		ent:  ent,
		arr:  &daos.Array{Obj: obj, ChunkSize: ent.Chunk},
	}, nil
}

// Info describes a namespace entry.
type Info struct {
	Name  string
	Type  EntryType
	Size  int64
	Class placement.ClassID
	Chunk int64
}

// Stat describes the entry at a path. Directory sizes are 0.
func (fs *FS) Stat(p *sim.Proc, anyPath string) (Info, error) {
	comps, err := splitPath(anyPath)
	if err != nil {
		return Info{}, err
	}
	if len(comps) == 0 {
		return Info{Name: "/", Type: TypeDir}, nil
	}
	parent, name, err := fs.lookupDir(p, anyPath)
	if err != nil {
		return Info{}, err
	}
	ent, err := fs.fetchEntry(p, parent, name)
	if err != nil {
		return Info{}, err
	}
	info := Info{Name: name, Type: ent.Type, Class: ent.Class, Chunk: ent.Chunk}
	if ent.Type == TypeFile {
		f, err := fs.openEntry(p, anyPath, ent)
		if err != nil {
			return Info{}, err
		}
		info.Size, err = f.Size(p)
		if err != nil {
			return Info{}, err
		}
	}
	return info, nil
}

// ReadDir lists a directory's entries, sorted by name.
func (fs *FS) ReadDir(p *sim.Proc, dirPath string) ([]Info, error) {
	dir, err := fs.openDir(p, dirPath)
	if err != nil {
		return nil, err
	}
	dkeys, err := dir.ListDkeys(p)
	if err != nil {
		return nil, err
	}
	var out []Info
	for _, dk := range dkeys {
		name := string(dk)
		if bytes.Equal(dk, sbDkey) {
			continue // hide the superblock record
		}
		ent, err := fs.fetchEntry(p, dir, name)
		if err != nil {
			return nil, err
		}
		out = append(out, Info{Name: name, Type: ent.Type, Class: ent.Class, Chunk: ent.Chunk})
	}
	return out, nil
}

// openDir resolves a path that must be a directory.
func (fs *FS) openDir(p *sim.Proc, dirPath string) (*daos.Object, error) {
	comps, err := splitPath(dirPath)
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return fs.root, nil
	}
	parent, name, err := fs.lookupDir(p, dirPath)
	if err != nil {
		return nil, err
	}
	ent, err := fs.fetchEntry(p, parent, name)
	if err != nil {
		return nil, err
	}
	if ent.Type != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, dirPath)
	}
	return fs.cont.OpenObject(p, ent.OID)
}

// Unlink removes a file or empty directory.
func (fs *FS) Unlink(p *sim.Proc, anyPath string) error {
	parent, name, err := fs.lookupDir(p, anyPath)
	if err != nil {
		return err
	}
	if name == "" {
		return ErrIsDir
	}
	ent, err := fs.fetchEntry(p, parent, name)
	if err != nil {
		return err
	}
	if ent.Type == TypeDir {
		dir, err := fs.cont.OpenObject(p, ent.OID)
		if err != nil {
			return err
		}
		children, err := dir.ListDkeys(p)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, anyPath)
		}
	}
	// Punch the data object, then drop the directory record.
	obj, err := fs.cont.OpenObject(p, ent.OID)
	if err != nil {
		return err
	}
	if err := obj.Punch(p); err != nil {
		return err
	}
	return fs.punchDkey(p, parent, name)
}

// punchDkey removes a directory record (a dkey punch on the parent object).
func (fs *FS) punchDkey(p *sim.Proc, dir *daos.Object, name string) error {
	kv := daos.KV{Obj: dir}
	return kv.Remove(p, name)
}

// Rename moves an entry to a new path (both parents must exist).
func (fs *FS) Rename(p *sim.Proc, oldPath, newPath string) error {
	oldParent, oldName, err := fs.lookupDir(p, oldPath)
	if err != nil {
		return err
	}
	if oldName == "" {
		return ErrIsDir
	}
	ent, err := fs.fetchEntry(p, oldParent, oldName)
	if err != nil {
		return err
	}
	newParent, newName, err := fs.lookupDir(p, newPath)
	if err != nil {
		return err
	}
	if newName == "" {
		return ErrIsDir
	}
	if _, err := fs.fetchEntry(p, newParent, newName); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	ent.Mtime = p.Now().Nanoseconds()
	if err := fs.storeEntry(p, newParent, newName, ent); err != nil {
		return err
	}
	return fs.punchDkey(p, oldParent, oldName)
}

// File is an open DFS file.
type File struct {
	fs   *FS
	path string
	ent  entry
	arr  *daos.Array
}

// Path returns the path the file was opened with.
func (f *File) Path() string { return f.path }

// Class returns the file's object class.
func (f *File) Class() placement.ClassID { return f.ent.Class }

// WriteAt stores data at the byte offset.
func (f *File) WriteAt(p *sim.Proc, off int64, data []byte) error {
	return f.arr.Write(p, off, data)
}

// ReadAt fetches n bytes at the byte offset; holes read as zeros.
func (f *File) ReadAt(p *sim.Proc, off int64, n int64) ([]byte, error) {
	return f.arr.Read(p, off, n)
}

// ReadAtInto fetches n bytes at the byte offset into dst (len(dst) == n;
// every byte is written, holes as zeros). A nil dst simulates the read with
// identical timing without materializing data.
func (f *File) ReadAtInto(p *sim.Proc, off int64, n int64, dst []byte) error {
	return f.arr.ReadAtInto(p, off, n, 0, dst)
}

// Size returns the file's end-of-file.
func (f *File) Size(p *sim.Proc) (int64, error) {
	return f.arr.Size(p)
}

// Sync is a no-op: DAOS updates are durable on completion (persistent
// memory, no client write-back cache). Present for POSIX shims.
func (f *File) Sync(p *sim.Proc) error { return nil }

// Close releases the handle (no server state in this model).
func (f *File) Close(p *sim.Proc) error { return nil }
