package dfs_test

import (
	"fmt"
	"path"
	"strings"
	"testing"
	"testing/quick"

	"daosim/internal/cluster"
	"daosim/internal/dfs"
	"daosim/internal/sim"
)

// TestPathResolutionMatchesReferenceTree drives a random tree of mkdir /
// create operations and checks that DFS's view of every path agrees with
// an in-memory reference map — the namespace invariant behind every DFuse
// and MPI-I/O operation.
func TestPathResolutionMatchesReferenceTree(t *testing.T) {
	type op struct {
		Dir  bool
		A, B uint8
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	f := func(ops []op) bool {
		if len(ops) > 12 {
			ops = ops[:12]
		}
		good := true
		withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fsys *dfs.FS) {
			ref := map[string]string{"/": "dir"} // path -> "dir"|"file"
			for _, o := range ops {
				parent := "/"
				// Half the time, nest under an existing directory.
				if o.B%2 == 0 {
					for cand := range ref {
						if ref[cand] == "dir" && strings.Count(cand, "/") < 3 {
							parent = cand
							break
						}
					}
				}
				name := names[int(o.A)%len(names)]
				full := path.Join(parent, name)
				_, exists := ref[full]
				if o.Dir {
					err := fsys.Mkdir(p, full)
					switch {
					case exists && err == nil:
						good = false
					case !exists && err != nil:
						good = false
					case !exists:
						ref[full] = "dir"
					}
				} else {
					_, err := fsys.Create(p, full, dfs.CreateOpts{})
					switch {
					case exists && err == nil:
						good = false
					case !exists && err != nil:
						good = false
					case !exists:
						ref[full] = "file"
					}
				}
			}
			// Every reference entry must stat with the right type.
			for full, kind := range ref {
				info, err := fsys.Stat(p, full)
				if err != nil {
					good = false
					return
				}
				wantDir := kind == "dir"
				if (info.Type == dfs.TypeDir) != wantDir {
					good = false
					return
				}
			}
			// And a path not in the reference must not resolve.
			if _, err := fsys.Stat(p, "/definitely/not/here"); err == nil {
				good = false
			}
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDeepPaths exercises resolution depth.
func TestDeepPaths(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fsys *dfs.FS) {
		deep := ""
		for i := 0; i < 8; i++ {
			deep += fmt.Sprintf("/level%d", i)
		}
		if err := fsys.MkdirAll(p, deep); err != nil {
			t.Error(err)
			return
		}
		f, err := fsys.Create(p, deep+"/leaf", dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(p, 0, []byte("deep"))
		info, err := fsys.Stat(p, deep+"/leaf")
		if err != nil || info.Size != 4 {
			t.Errorf("deep stat = %+v, %v", info, err)
		}
	})
}

// TestPathNormalization checks odd-but-legal path spellings.
func TestPathNormalization(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fsys *dfs.FS) {
		fsys.MkdirAll(p, "/a/b")
		if _, err := fsys.Create(p, "/a/b/../b/./c", dfs.CreateOpts{}); err != nil {
			t.Errorf("normalized create: %v", err)
			return
		}
		if _, err := fsys.Open(p, "/a/b/c"); err != nil {
			t.Errorf("canonical open after dotted create: %v", err)
		}
		if _, err := fsys.Open(p, "a/b/c"); err != nil {
			t.Errorf("relative spelling should resolve from root: %v", err)
		}
	})
}
