package dfs_test

import (
	"bytes"
	"errors"
	"testing"

	"daosim/internal/cluster"
	"daosim/internal/daos"
	"daosim/internal/dfs"
	"daosim/internal/placement"
	"daosim/internal/sim"
)

// withFS mounts a fresh filesystem on a small testbed.
func withFS(t *testing.T, body func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS)) {
	t.Helper()
	tb := cluster.New(cluster.Small())
	client := tb.NewClient(tb.ClientNode(0), 1)
	tb.Run(func(p *sim.Proc) {
		pool, err := client.CreatePool(p, "p0")
		if err != nil {
			t.Error(err)
			return
		}
		ct, err := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2})
		if err != nil {
			t.Error(err)
			return
		}
		fs, err := dfs.Mount(p, ct)
		if err != nil {
			t.Error(err)
			return
		}
		body(p, tb, fs)
	})
}

func TestMountFormatsAndRemounts(t *testing.T) {
	tb := cluster.New(cluster.Small())
	c1 := tb.NewClient(tb.ClientNode(0), 1)
	c2 := tb.NewClient(tb.ClientNode(1), 2)
	tb.Run(func(p *sim.Proc) {
		pool, _ := c1.CreatePool(p, "p0")
		ct, _ := pool.CreateContainer(p, "c0", daos.ContProps{Class: placement.S2, ChunkSize: 1 << 20})
		fs1, err := dfs.Mount(p, ct)
		if err != nil {
			t.Error(err)
			return
		}
		if err := fs1.Mkdir(p, "/from-client1"); err != nil {
			t.Error(err)
			return
		}
		// Second client mounts the same container and sees the namespace.
		pool2, _ := c2.Connect(p, "p0")
		ct2, _ := pool2.OpenContainer(p, "c0")
		fs2, err := dfs.Mount(p, ct2)
		if err != nil {
			t.Error(err)
			return
		}
		if fs2.Chunk() != 1<<20 || fs2.Class() != placement.S2 {
			t.Errorf("superblock defaults: chunk=%d class=%v", fs2.Chunk(), fs2.Class())
		}
		info, err := fs2.Stat(p, "/from-client1")
		if err != nil || info.Type != dfs.TypeDir {
			t.Errorf("cross-client stat: %+v, %v", info, err)
		}
	})
}

func TestFileWriteRead(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		f, err := fs.Create(p, "/data.bin", dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		payload := bytes.Repeat([]byte("0123456789abcdef"), 1<<16) // 1 MiB
		if err := f.WriteAt(p, 0, payload); err != nil {
			t.Error(err)
			return
		}
		got, err := f.ReadAt(p, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			t.Errorf("read-back mismatch (err=%v)", err)
		}
		size, err := f.Size(p)
		if err != nil || size != int64(len(payload)) {
			t.Errorf("size = %d, %v", size, err)
		}
	})
}

func TestNestedDirectories(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		if err := fs.MkdirAll(p, "/a/b/c"); err != nil {
			t.Error(err)
			return
		}
		f, err := fs.Create(p, "/a/b/c/deep.txt", dfs.CreateOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(p, 0, []byte("deep"))
		got, err := fs.Open(p, "/a/b/c/deep.txt")
		if err != nil {
			t.Error(err)
			return
		}
		data, _ := got.ReadAt(p, 0, 4)
		if string(data) != "deep" {
			t.Errorf("data = %q", data)
		}
		// Listing intermediate directory.
		infos, err := fs.ReadDir(p, "/a/b")
		if err != nil || len(infos) != 1 || infos[0].Name != "c" {
			t.Errorf("ReadDir(/a/b) = %v, %v", infos, err)
		}
	})
}

func TestCreateExclusive(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		if _, err := fs.Create(p, "/f", dfs.CreateOpts{}); err != nil {
			t.Error(err)
			return
		}
		if _, err := fs.Create(p, "/f", dfs.CreateOpts{}); !errors.Is(err, dfs.ErrExist) {
			t.Errorf("duplicate create err = %v", err)
		}
		if _, err := fs.OpenOrCreate(p, "/f", dfs.CreateOpts{}); err != nil {
			t.Errorf("OpenOrCreate on existing: %v", err)
		}
		if _, err := fs.OpenOrCreate(p, "/g", dfs.CreateOpts{}); err != nil {
			t.Errorf("OpenOrCreate on missing: %v", err)
		}
	})
}

func TestOpenMissing(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		if _, err := fs.Open(p, "/nope"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
		if _, err := fs.Open(p, "/no/such/dir/f"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestFileThroughNonDirFails(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		f, _ := fs.Create(p, "/plain", dfs.CreateOpts{})
		f.WriteAt(p, 0, []byte("x"))
		if _, err := fs.Open(p, "/plain/child"); !errors.Is(err, dfs.ErrNotDir) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestUnlink(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		f, _ := fs.Create(p, "/doomed", dfs.CreateOpts{})
		f.WriteAt(p, 0, bytes.Repeat([]byte("x"), 4096))
		if err := fs.Unlink(p, "/doomed"); err != nil {
			t.Error(err)
			return
		}
		if _, err := fs.Open(p, "/doomed"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("err after unlink = %v", err)
		}
	})
}

func TestUnlinkNonEmptyDir(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		fs.MkdirAll(p, "/d")
		fs.Create(p, "/d/child", dfs.CreateOpts{})
		if err := fs.Unlink(p, "/d"); !errors.Is(err, dfs.ErrNotEmpty) {
			t.Errorf("err = %v", err)
		}
		fs.Unlink(p, "/d/child")
		if err := fs.Unlink(p, "/d"); err != nil {
			t.Errorf("empty dir unlink: %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		f, _ := fs.Create(p, "/old", dfs.CreateOpts{})
		f.WriteAt(p, 0, []byte("payload"))
		fs.MkdirAll(p, "/sub")
		if err := fs.Rename(p, "/old", "/sub/new"); err != nil {
			t.Error(err)
			return
		}
		if _, err := fs.Open(p, "/old"); !errors.Is(err, dfs.ErrNotExist) {
			t.Errorf("old path err = %v", err)
		}
		g, err := fs.Open(p, "/sub/new")
		if err != nil {
			t.Error(err)
			return
		}
		data, _ := g.ReadAt(p, 0, 7)
		if string(data) != "payload" {
			t.Errorf("renamed data = %q", data)
		}
	})
}

func TestPerFileClassOverride(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		f, err := fs.Create(p, "/wide", dfs.CreateOpts{Class: placement.SX})
		if err != nil {
			t.Error(err)
			return
		}
		if f.Class() != placement.SX {
			t.Errorf("class = %v", f.Class())
		}
		info, err := fs.Stat(p, "/wide")
		if err != nil || info.Class != placement.SX {
			t.Errorf("stat class = %v, %v", info.Class, err)
		}
		// FS default (container prop) applies otherwise.
		g, _ := fs.Create(p, "/default", dfs.CreateOpts{})
		if g.Class() != placement.S2 {
			t.Errorf("default class = %v", g.Class())
		}
	})
}

func TestReadDirHidesSuperblock(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		fs.Create(p, "/visible", dfs.CreateOpts{})
		infos, err := fs.ReadDir(p, "/")
		if err != nil {
			t.Error(err)
			return
		}
		for _, info := range infos {
			if info.Name != "visible" {
				t.Errorf("unexpected root entry %q", info.Name)
			}
		}
	})
}

func TestStatRoot(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		info, err := fs.Stat(p, "/")
		if err != nil || info.Type != dfs.TypeDir {
			t.Errorf("root stat = %+v, %v", info, err)
		}
	})
}

func TestSparseFile(t *testing.T) {
	withFS(t, func(p *sim.Proc, tb *cluster.Testbed, fs *dfs.FS) {
		f, _ := fs.Create(p, "/sparse", dfs.CreateOpts{})
		f.WriteAt(p, 10<<20, []byte("tail"))
		size, _ := f.Size(p)
		if size != 10<<20+4 {
			t.Errorf("size = %d", size)
		}
		head, err := f.ReadAt(p, 0, 16)
		if err != nil || !bytes.Equal(head, make([]byte, 16)) {
			t.Errorf("hole = %v, %v", head, err)
		}
	})
}
