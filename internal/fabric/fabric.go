// Package fabric models the high-performance interconnect between cluster
// nodes, in the style of the OpenFabrics Interfaces (OFI/libfabric) layer
// DAOS uses: named nodes with full-duplex NICs, per-message wire latency,
// fair-shared link bandwidth, and two communication styles — blocking RPC
// (request/response executed in the caller's simulated process) and one-way
// datagram delivery into a destination mailbox (used by Raft).
//
// The NEXTGenIO system interconnect was Intel Omni-Path; the defaults model
// a dual-rail 100 Gbit/s fabric.
package fabric

import (
	"fmt"
	"time"

	"daosim/internal/sim"
)

// Config holds fabric-wide parameters.
type Config struct {
	// WireLatency is one-way propagation plus switching delay per message.
	WireLatency time.Duration
	// NICBW is the default per-node NIC bandwidth in bytes/s, each
	// direction (full duplex).
	NICBW float64
	// FlowBW optionally caps a single flow (one endpoint's processing
	// ceiling — a single OFI endpoint cannot saturate a dual-rail NIC).
	FlowBW float64
	// MsgOverhead is the fixed wire overhead added to every message
	// (headers, acknowledgements).
	MsgOverhead int64
}

// DefaultConfig models a dual-rail 100 Gbit/s Omni-Path style fabric.
func DefaultConfig() Config {
	return Config{
		WireLatency: 2 * time.Microsecond,
		NICBW:       25.0e9, // 2 x 100 Gbit/s rails
		FlowBW:      3.0e9,  // single endpoint stream ceiling
		MsgOverhead: 256,
	}
}

// Fabric is the interconnect instance.
type Fabric struct {
	sim   *sim.Sim
	cfg   Config
	nodes []*Node

	// Messages counts every message placed on the wire.
	Messages int64
	// Bytes counts every payload byte placed on the wire.
	Bytes int64
}

// New creates an empty fabric.
func New(s *sim.Sim, cfg Config) *Fabric {
	if cfg.NICBW <= 0 {
		panic("fabric: NICBW must be positive")
	}
	return &Fabric{sim: s, cfg: cfg}
}

// Sim returns the owning simulator.
func (f *Fabric) Sim() *sim.Sim { return f.sim }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Node is a machine on the fabric with a full-duplex NIC.
type Node struct {
	fabric   *Fabric
	id       int
	name     string
	tx, rx   *sim.SharedBW
	services map[string]Handler
	mailbox  *sim.Queue
}

// AddNode registers a node with the default NIC bandwidth.
func (f *Fabric) AddNode(name string) *Node {
	return f.AddNodeBW(name, f.cfg.NICBW)
}

// AddNodeBW registers a node with an explicit NIC bandwidth.
func (f *Fabric) AddNodeBW(name string, nicBW float64) *Node {
	n := &Node{
		fabric:   f,
		id:       len(f.nodes),
		name:     name,
		tx:       sim.NewSharedBW(f.sim, name+"/tx", nicBW, f.cfg.FlowBW),
		rx:       sim.NewSharedBW(f.sim, name+"/rx", nicBW, f.cfg.FlowBW),
		services: make(map[string]Handler),
		mailbox:  sim.NewQueue(f.sim, name+"/mbox"),
	}
	f.nodes = append(f.nodes, n)
	return n
}

// Node returns the node with the given id.
func (f *Fabric) Node(id int) *Node {
	if id < 0 || id >= len(f.nodes) {
		panic(fmt.Sprintf("fabric: no node %d", id))
	}
	return f.nodes[id]
}

// NumNodes returns the number of registered nodes.
func (f *Fabric) NumNodes() int { return len(f.nodes) }

// ID returns the node's fabric identifier.
func (n *Node) ID() int { return n.id }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Request is an RPC request: an opcode, a functional payload, and the
// payload's on-wire size used for timing.
type Request struct {
	Op   string
	Body interface{}
	Size int64
}

// Response is an RPC response.
type Response struct {
	Body interface{}
	Size int64
	Err  error
}

// Handler serves an RPC on the destination node. It runs inside the calling
// process, so any resource it acquires (engine xstreams, media channels)
// charges the caller's timeline exactly as a synchronous RPC would.
type Handler func(p *sim.Proc, req Request) Response

// Register installs a handler for the named service on this node.
func (n *Node) Register(service string, h Handler) {
	if _, dup := n.services[service]; dup {
		panic(fmt.Sprintf("fabric: duplicate service %q on %s", service, n.name))
	}
	n.services[service] = h
}

// transfer moves a payload of size bytes from src to dst, charging both NICs
// and the wire latency.
func (f *Fabric) transfer(p *sim.Proc, src, dst *Node, size int64) {
	f.Messages++
	f.Bytes += size
	wire := size + f.cfg.MsgOverhead
	if src != dst {
		src.tx.Transfer(p, wire)
		p.Sleep(f.cfg.WireLatency)
		dst.rx.Transfer(p, wire)
		return
	}
	// Loopback: shared-memory transport, no NIC serialization, small cost.
	p.Sleep(200 * time.Nanosecond)
}

// Call performs a blocking RPC from src to the named service on dst. Request
// and response payload sizes charge the NICs in both directions; the handler
// executes synchronously at the destination.
func (f *Fabric) Call(p *sim.Proc, src, dst *Node, service string, req Request) Response {
	h, ok := dst.services[service]
	if !ok {
		return Response{Err: fmt.Errorf("fabric: no service %q on node %s", service, dst.name)}
	}
	f.transfer(p, src, dst, req.Size)
	resp := h(p, req)
	f.transfer(p, dst, src, resp.Size)
	return resp
}

// Move transfers size bytes from src to dst, charging both NICs and the
// wire, with the calling process blocked for the duration (a rendezvous
// data movement, as in MPI point-to-point or collective exchange phases).
func (f *Fabric) Move(p *sim.Proc, src, dst *Node, size int64) {
	f.transfer(p, src, dst, size)
}

// Datagram is a one-way message delivered to a node mailbox.
type Datagram struct {
	From int
	Body interface{}
}

// Send delivers body one-way from src to dst's mailbox. The sender is only
// charged TX serialization; delivery happens after the wire latency without
// blocking the sender (buffered, credit-based transport).
func (f *Fabric) Send(p *sim.Proc, src, dst *Node, body interface{}, size int64) {
	f.Messages++
	f.Bytes += size
	wire := size + f.cfg.MsgOverhead
	if src != dst {
		src.tx.Transfer(p, wire)
	}
	d := Datagram{From: src.id, Body: body}
	f.sim.After(f.cfg.WireLatency, func() { dst.mailbox.Send(d) })
}

// Mailbox returns the node's datagram mailbox.
func (n *Node) Mailbox() *sim.Queue { return n.mailbox }

// TX returns the node's transmit channel (for utilisation reporting).
func (n *Node) TX() *sim.SharedBW { return n.tx }

// RX returns the node's receive channel.
func (n *Node) RX() *sim.SharedBW { return n.rx }
