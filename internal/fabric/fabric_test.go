package fabric

import (
	"testing"
	"time"

	"daosim/internal/sim"
)

func testConfig() Config {
	return Config{
		WireLatency: 10 * time.Microsecond,
		NICBW:       1e9,
		MsgOverhead: 0,
	}
}

func TestRPCRoundTrip(t *testing.T) {
	s := sim.New(1)
	f := New(s, testConfig())
	client := f.AddNode("client")
	server := f.AddNode("server")
	server.Register("echo", func(p *sim.Proc, req Request) Response {
		return Response{Body: req.Body, Size: req.Size}
	})
	var got interface{}
	var done time.Duration
	s.Spawn("c", func(p *sim.Proc) {
		resp := f.Call(p, client, server, "echo", Request{Op: "echo", Body: "hi", Size: 1_000_000})
		got = resp.Body
		done = p.Now()
	})
	s.Run()
	if got != "hi" {
		t.Fatalf("echo body = %v", got)
	}
	// 1 MB each way at 1 GB/s = 2 ms, plus 2x10us wire, charged on both NICs:
	// store-and-forward tx then rx gives 2*(1ms+1ms) + 20us = 4.02 ms.
	want := 4*time.Millisecond + 20*time.Microsecond
	if diff := done - want; diff < -50*time.Microsecond || diff > 50*time.Microsecond {
		t.Fatalf("RPC took %v, want ~%v", done, want)
	}
}

func TestUnknownServiceErrors(t *testing.T) {
	s := sim.New(1)
	f := New(s, testConfig())
	a := f.AddNode("a")
	b := f.AddNode("b")
	var err error
	s.Spawn("c", func(p *sim.Proc) {
		err = f.Call(p, a, b, "nope", Request{}).Err
	})
	s.Run()
	if err == nil {
		t.Fatal("expected error for unknown service")
	}
}

func TestDuplicateServicePanics(t *testing.T) {
	s := sim.New(1)
	f := New(s, testConfig())
	n := f.AddNode("n")
	n.Register("svc", func(p *sim.Proc, req Request) Response { return Response{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	n.Register("svc", func(p *sim.Proc, req Request) Response { return Response{} })
}

func TestNICContention(t *testing.T) {
	// Two clients calling one server share the server RX NIC; each RPC takes
	// longer than a solo one would.
	s := sim.New(1)
	f := New(s, testConfig())
	server := f.AddNode("server")
	server.Register("sink", func(p *sim.Proc, req Request) Response { return Response{Size: 0} })

	solo := func() time.Duration {
		s2 := sim.New(1)
		f2 := New(s2, testConfig())
		srv := f2.AddNode("server")
		srv.Register("sink", func(p *sim.Proc, req Request) Response { return Response{Size: 0} })
		cl := f2.AddNode("c")
		var d time.Duration
		s2.Spawn("c", func(p *sim.Proc) {
			f2.Call(p, cl, srv, "sink", Request{Size: 10_000_000})
			d = p.Now()
		})
		s2.Run()
		return d
	}()

	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		client := f.AddNode("client")
		s.Spawn("c", func(p *sim.Proc) {
			f.Call(p, client, server, "sink", Request{Size: 10_000_000})
			done[i] = p.Now()
		})
	}
	s.Run()
	// TX happens on separate client NICs in parallel; the shared server RX
	// doubles, so each RPC takes ~1.5x the solo time.
	for _, d := range done {
		if d < solo*14/10 {
			t.Fatalf("contended RPC took %v, solo %v; expected meaningful slowdown", d, solo)
		}
	}
}

func TestLoopbackCheap(t *testing.T) {
	s := sim.New(1)
	f := New(s, testConfig())
	n := f.AddNode("n")
	n.Register("local", func(p *sim.Proc, req Request) Response { return Response{Size: req.Size} })
	var done time.Duration
	s.Spawn("c", func(p *sim.Proc) {
		f.Call(p, n, n, "local", Request{Size: 100_000_000})
		done = p.Now()
	})
	s.Run()
	if done > 10*time.Microsecond {
		t.Fatalf("loopback RPC took %v, should avoid NIC serialization", done)
	}
}

func TestSendDelivery(t *testing.T) {
	s := sim.New(1)
	f := New(s, testConfig())
	a := f.AddNode("a")
	b := f.AddNode("b")
	var got []int
	var recvAt time.Duration
	s.Spawn("recv", func(p *sim.Proc) {
		for len(got) < 2 {
			v, ok := b.Mailbox().Recv(p)
			if !ok {
				return
			}
			d := v.(Datagram)
			got = append(got, d.Body.(int))
			recvAt = p.Now()
		}
	})
	s.Spawn("send", func(p *sim.Proc) {
		f.Send(p, a, b, 1, 1000)
		f.Send(p, a, b, 2, 1000)
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2] in order", got)
	}
	if recvAt < 10*time.Microsecond {
		t.Fatalf("delivery at %v ignored wire latency", recvAt)
	}
}

func TestSendDoesNotBlockOnReceiver(t *testing.T) {
	// One-way sends complete at TX serialization speed even if nobody reads.
	s := sim.New(1)
	f := New(s, testConfig())
	a := f.AddNode("a")
	b := f.AddNode("b")
	var sendDone time.Duration
	s.Spawn("send", func(p *sim.Proc) {
		f.Send(p, a, b, "x", 1_000_000) // 1 ms TX
		sendDone = p.Now()
	})
	s.Run()
	if sendDone > 2*time.Millisecond {
		t.Fatalf("send blocked for %v", sendDone)
	}
	if b.Mailbox().Len() != 1 {
		t.Fatalf("mailbox length = %d", b.Mailbox().Len())
	}
}

func TestMessageAccounting(t *testing.T) {
	s := sim.New(1)
	f := New(s, testConfig())
	a := f.AddNode("a")
	b := f.AddNode("b")
	b.Register("svc", func(p *sim.Proc, req Request) Response { return Response{Size: 10} })
	s.Spawn("c", func(p *sim.Proc) {
		f.Call(p, a, b, "svc", Request{Size: 100})
		f.Send(p, a, b, nil, 50)
	})
	s.Run()
	if f.Messages != 3 { // request + response + datagram
		t.Fatalf("messages = %d, want 3", f.Messages)
	}
	if f.Bytes != 160 {
		t.Fatalf("bytes = %d, want 160", f.Bytes)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NICBW < 10e9 {
		t.Fatal("dual-rail Omni-Path NIC should exceed 10 GB/s")
	}
	if cfg.FlowBW <= 0 || cfg.FlowBW > cfg.NICBW {
		t.Fatalf("flow cap %v out of range", cfg.FlowBW)
	}
}
