// Package daosim's root benchmarks regenerate every figure of the paper's
// evaluation section plus the DESIGN.md ablations through testing.B. Each
// benchmark runs the corresponding study at Quick scale (CI-sized sweep)
// and reports the headline bandwidths as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Studies fan independent sweep points out
// across cores via the core Runner; BenchmarkFigure1Speedup reports the
// wall-clock speedup of the parallel pool over the sequential path (their
// measured figures are byte-identical). Use cmd/figures for the full-scale
// node sweep and the claim checks.
package daosim_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"daosim/internal/bench"
	"daosim/internal/core"
)

// reportStudy publishes a study's peak-point bandwidths as benchmark
// metrics (GiB/s at the largest node count, per series).
func reportStudy(b *testing.B, st *core.Study) {
	b.Helper()
	for _, s := range st.Series {
		last := s.Points[len(s.Points)-1]
		label := metricLabel(s.Variant.Label)
		b.ReportMetric(last.WriteGiBs, label+"_w_GiB/s")
		b.ReportMetric(last.ReadGiBs, label+"_r_GiB/s")
	}
}

// metricLabel makes a series label safe for testing.B metric units (no
// whitespace).
func metricLabel(label string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "")
	return r.Replace(label)
}

// BenchmarkFigure1Read and the companions below each regenerate one panel.
// The underlying study measures both phases at once; the per-panel split
// mirrors the paper's (a)/(b) sub-figures.

func BenchmarkFigure1Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.Figure1(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

func BenchmarkFigure1Write(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.Figure1(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

// BenchmarkFigure1Speedup runs the Quick Figure 1 sweep sequentially and
// then on the full worker pool, verifies the two studies are byte-identical,
// and reports the wall-clock speedup the pool buys.
func BenchmarkFigure1Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		seq, err := bench.Figure1(bench.Options{Scale: bench.Quick, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		seqWall := time.Since(t0)
		t0 = time.Now()
		par, err := bench.Figure1(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		parWall := time.Since(t0)
		if seq.CSV() != par.CSV() {
			b.Fatal("parallel sweep diverged from sequential same-seed sweep")
		}
		if i == b.N-1 {
			b.ReportMetric(seqWall.Seconds()/parWall.Seconds(), "speedup")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
		}
	}
}

func BenchmarkFigure2Read(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.Figure2(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

func BenchmarkFigure2Write(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.Figure2(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

func BenchmarkAblationObjectClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.AblationObjectClass(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

func BenchmarkAblationTransferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.AblationTransferSize(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, pt := range pts {
				b.ReportMetric(pt.WriteGiBs, "w_GiB/s@"+sizeLabel(pt.Transfer))
			}
		}
	}
}

func BenchmarkAblationFuseOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.AblationFuseOverhead(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

func BenchmarkAblationCollective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := bench.AblationCollective(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStudy(b, st)
		}
	}
}

func BenchmarkFutureNativeArray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := bench.FutureNativeArray(bench.At(bench.Quick))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := pts[len(pts)-1]
			b.ReportMetric(last.NativeWriteGiBs, "native_w_GiB/s")
			b.ReportMetric(last.DFSWriteGiBs, "dfs_w_GiB/s")
		}
	}
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MiB"
	default:
		return itoa(n>>10) + "KiB"
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
